"""Key material held inside the trusted computing base (the GPU chip).

A :class:`KeySet` bundles the two independent keys the security models need:
one for counter-mode encryption and one for MAC generation. Real systems
derive these from fuses or a DRBG at boot; the reproduction derives them
deterministically from a seed so tests are repeatable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class KeySet:
    """Encryption and MAC keys for one protected memory system."""

    encryption_key: bytes
    mac_key: bytes

    def __post_init__(self) -> None:
        if len(self.encryption_key) != 16:
            raise ValueError("encryption_key must be 16 bytes (AES-128)")
        if len(self.mac_key) < 16:
            raise ValueError("mac_key must be at least 16 bytes")

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeySet":
        """Derive a deterministic key set from arbitrary seed bytes."""
        enc = hashlib.sha256(b"repro-enc|" + seed).digest()[:16]
        mac = hashlib.sha256(b"repro-mac|" + seed).digest()
        return cls(encryption_key=enc, mac_key=mac)

    @classmethod
    def default(cls) -> "KeySet":
        """The fixed key set used by examples and tests."""
        return cls.from_seed(b"salus-hpca-2024")

    @classmethod
    def for_tenant(
        cls, tenant: int, platform_seed: bytes = b"salus-hpca-2024"
    ) -> "KeySet":
        """Derive one tenant's private key domain from the platform seed.

        Each security domain gets independent encryption and MAC keys, so
        even metadata structures that share a physical device can never
        authenticate (or decrypt) another tenant's data. The derivation
        matches :meth:`~repro.config.PartitionConfig.tenant_key_seed`:
        ``sha256`` over ``<platform_seed>|tenant<t>``.
        """
        if tenant < 0:
            raise ValueError("tenant must be non-negative")
        return cls.from_seed(platform_seed + b"|tenant%d" % tenant)

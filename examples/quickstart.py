#!/usr/bin/env python3
"""Quickstart: compare security models on one benchmark.

Runs the `nw` workload (the paper's biggest winner) through the three
security personalities - no security, the conventional baseline, and Salus -
on the laptop-scale evaluation machine, then prints normalized IPC and
security traffic.

Usage::

    python examples/quickstart.py [benchmark] [n_accesses]
"""

import sys

from repro import SystemConfig, build_trace, run_model
from repro.harness.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "nw"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    config = SystemConfig.bench()
    trace = build_trace(benchmark, n_accesses=n_accesses, num_sms=config.gpu.num_sms)
    print(
        f"workload={benchmark}: {len(trace)} accesses over "
        f"{trace.footprint_pages} pages "
        f"({trace.write_fraction:.0%} writes, "
        f"compute/mem={trace.compute_per_mem})"
    )
    print(
        f"device page cache: {int(trace.footprint_pages * config.device_capacity_ratio)} "
        f"frames ({config.device_capacity_ratio:.0%} of footprint), "
        f"CXL at 1/{round(1 / config.gpu.cxl_bw_ratio)} of device bandwidth\n"
    )

    results = {m: run_model(config, trace, m) for m in ("nosec", "baseline", "salus")}
    nosec_ipc = results["nosec"].ipc

    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                result.ipc / nosec_ipc,
                result.fills,
                result.evictions,
                result.stats.security_bytes() / 1e6,
                result.counters["cxl_utilization"],
            )
        )
    print(
        format_table(
            ("model", "ipc_norm", "fills", "evicts", "security_MB", "cxl_util"),
            rows,
            title="Security model comparison",
        )
    )
    improvement = results["salus"].ipc / results["baseline"].ipc - 1
    print(f"\nSalus improves IPC over the conventional baseline by {improvement:+.1%}")
    traffic_ratio = results["salus"].stats.security_bytes() / max(
        1, results["baseline"].stats.security_bytes()
    )
    print(f"Salus security traffic is {traffic_ratio:.0%} of the baseline's")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Traffic anatomy: where every security byte goes, per design variant.

Dissects the memory traffic of one workload under the conventional baseline,
full Salus, and each Salus ablation - the per-category, per-memory-side
breakdown behind Figures 11 and 12, plus the contribution of each individual
optimization (DESIGN.md Section 5).

Usage::

    python examples/traffic_anatomy.py [benchmark] [n_accesses]
"""

import sys

from repro import SystemConfig, build_trace, run_model
from repro.harness.report import format_table
from repro.sim.stats import Side, TrafficCategory

VARIANTS = (
    ("baseline", "conventional (location-tied metadata)"),
    ("salus-unified", "unified addressing only"),
    ("salus-nofoa", "Salus minus fetch-on-access"),
    ("salus-nocollapse", "Salus minus collapsed counters"),
    ("salus-coarsedirty", "Salus minus fine dirty tracking"),
    ("salus", "full Salus"),
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "nw"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 15_000
    config = SystemConfig.bench()
    trace = build_trace(benchmark, n_accesses=n_accesses, num_sms=config.gpu.num_sms)
    print(
        f"workload={benchmark}, {len(trace)} accesses, "
        f"{trace.footprint_pages} pages footprint\n"
    )

    rows = []
    baseline_security = None
    for model, description in VARIANTS:
        result = run_model(config, trace, model)
        stats = result.stats

        def mb(side, category):
            return stats.bytes_for(side, category) / 1e6

        security = stats.security_bytes() / 1e6
        if model == "baseline":
            baseline_security = security
        rows.append(
            (
                model,
                mb(Side.CXL, TrafficCategory.COUNTER)
                + mb(Side.DEVICE, TrafficCategory.COUNTER),
                mb(Side.CXL, TrafficCategory.MAC)
                + mb(Side.DEVICE, TrafficCategory.MAC),
                mb(Side.CXL, TrafficCategory.BMT)
                + mb(Side.DEVICE, TrafficCategory.BMT),
                mb(Side.CXL, TrafficCategory.REENC_DATA)
                + mb(Side.DEVICE, TrafficCategory.REENC_DATA),
                security,
                security / baseline_security,
            )
        )
    print(
        format_table(
            (
                "variant", "counter_MB", "mac_MB", "bmt_MB",
                "reencrypt_MB", "security_MB", "vs_baseline",
            ),
            rows,
            title="Security traffic anatomy (both memory sides)",
        )
    )
    print(
        "\nReading the table: collapsed counters erase dedicated counter"
        "\ntransfers, fetch-on-access prunes MAC movement for untouched"
        "\nchunks, unified addressing eliminates re-encryption data, and the"
        "\ncompact CXL tree shrinks BMT bytes.\n"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The security argument, executed: real AES, real MACs, real Merkle trees.

This example drives the *functional* security system (byte-accurate, actual
cryptography) through the scenarios the paper's design must survive:

1. data round-trips through heavy page-migration churn;
2. Salus migrates ciphertext verbatim - zero re-encryptions - while the
   conventional baseline re-encrypts every sector it moves;
3. a physical attacker who flips ciphertext bits is caught by the MACs;
4. a replay attacker who restores a complete, self-consistent stale snapshot
   (data + MACs + counters + Merkle leaf) is caught by the on-chip root.

Usage::

    python examples/confidential_migration.py
"""

import random

from repro.errors import IntegrityError, SecurityError
from repro.security.functional import FunctionalSecureSystem


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(1, 60 - len(text)))


def demo_roundtrip_and_reencryption() -> None:
    banner("1+2. Migration churn: round-trip and re-encryption counts")
    for mode in ("salus", "baseline"):
        system = FunctionalSecureSystem(footprint_pages=16, frames=4, mode=mode)
        rng = random.Random(2024)
        expected = {}
        for _ in range(500):
            addr = rng.randrange(16 * 128) * 32
            value = bytes(rng.randrange(256) for _ in range(32))
            system.write(addr, value)
            expected[addr] = value
        ok = all(system.read(a) == v for a, v in expected.items())
        stats = system.stats
        print(
            f"  {mode:9s} round-trip={'OK' if ok else 'FAIL'}  "
            f"fills={stats.fills}  evictions={stats.evictions}  "
            f"migration re-encrypted sectors={stats.migration_reencrypted_sectors}"
        )
    print("  -> Salus: 0 re-encryptions. Ciphertext is location-independent")
    print("     because the IV uses the permanent CXL address (Section IV-A).")


def demo_verbatim_ciphertext() -> None:
    banner("Ciphertext moves verbatim under Salus")
    system = FunctionalSecureSystem(footprint_pages=4, frames=1, mode="salus")
    system.write(0, b"confidential-model-weights-0001!")
    system.write(4096, b"x" * 32)  # pushes page 0 out to the CXL expander
    in_cxl = system.cxl_data.read(0)
    assert system.read(0) == b"confidential-model-weights-0001!"
    frame = system.page_cache.frame_of(0)
    in_device = system.device_data.read(frame * 128)
    print(f"  CXL image   : {in_cxl.hex()[:32]}...")
    print(f"  device image: {in_device.hex()[:32]}...")
    print(f"  identical   : {in_cxl == in_device}")


def demo_tamper_detection() -> None:
    banner("3. Physical tampering is detected")
    system = FunctionalSecureSystem(footprint_pages=4, frames=2, mode="salus")
    system.write(0, b"A" * 32)
    system.tamper_device_sector(0, b"B" * 32)
    try:
        system.read(0)
        print("  !! tampering was NOT detected - this is a bug")
    except IntegrityError as exc:
        print(f"  caught IntegrityError: {exc}")


def demo_replay_detection() -> None:
    banner("4. Replaying a stale (but self-consistent) snapshot is detected")
    system = FunctionalSecureSystem(footprint_pages=4, frames=1, mode="salus")
    system.write(0, b"balance=100" + b"\x00" * 21)
    system.write(4096, b"x" * 32)              # page 0 evicted at epoch 1
    snapshot = system.snapshot_chunk(0)        # attacker records everything
    system.write(0, b"balance=0  " + b"\x00" * 21)
    system.write(4096, b"y" * 32)              # evicted again at epoch 2
    system.replay_chunk(snapshot)              # attacker restores epoch-1 state
    try:
        value = system.read(0)
        print(f"  !! replay NOT detected - read back {value[:11]!r}")
    except SecurityError as exc:
        print(f"  caught {type(exc).__name__}: {exc}")


def main() -> None:
    demo_roundtrip_and_reencryption()
    demo_verbatim_ciphertext()
    demo_tamper_detection()
    demo_replay_detection()
    print()


if __name__ == "__main__":
    main()

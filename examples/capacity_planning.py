#!/usr/bin/env python3
"""Capacity planning: how Salus's advantage moves with the hardware budget.

An operator sizing a CXL-expanded GPU fleet has two dials: how much HBM to
buy relative to the working set (the device-capacity ratio of Figure 14) and
how much CXL bandwidth to provision (the ratio of Figure 13). This example
sweeps both for one workload and prints the Salus-vs-baseline picture at
each point, reproducing the paper's sensitivity trends at example scale.

Usage::

    python examples/capacity_planning.py [benchmark] [n_accesses]
"""

import sys

from repro import SystemConfig, build_trace, run_model
from repro.harness.report import format_table


def sweep_point(config, benchmark, n_accesses):
    trace = build_trace(benchmark, n_accesses=n_accesses, num_sms=config.gpu.num_sms)
    nosec = run_model(config, trace, "nosec")
    baseline = run_model(config, trace, "baseline")
    salus = run_model(config, trace, "salus")
    return (
        baseline.ipc / nosec.ipc,
        salus.ipc / nosec.ipc,
        salus.ipc / baseline.ipc - 1,
    )


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
    n_accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 15_000
    base = SystemConfig.bench()

    rows = []
    for ratio in (0.20, 0.35, 0.50):
        config = base.with_capacity_ratio(ratio)
        b, s, improvement = sweep_point(config, benchmark, n_accesses)
        rows.append((f"{ratio:.0%}", b, s, f"{improvement:+.1%}"))
    print(
        format_table(
            ("device capacity", "baseline", "salus", "salus gain"),
            rows,
            title=f"Figure-14 sweep - HBM capacity vs footprint ({benchmark})",
        )
    )
    print(
        "\nLess resident capacity -> more migration -> a bigger Salus win;"
        "\nbuying Salus is worth more than buying HBM at the margin.\n"
    )

    rows = []
    for bw_ratio in (1 / 32, 1 / 16, 1 / 8, 1 / 4):
        config = base.with_cxl_bw_ratio(bw_ratio)
        b, s, improvement = sweep_point(config, benchmark, n_accesses)
        rows.append((f"1/{round(1 / bw_ratio)}", b, s, f"{improvement:+.1%}"))
    print(
        format_table(
            ("cxl bandwidth", "baseline", "salus", "salus gain"),
            rows,
            title=f"Figure-13 sweep - CXL link bandwidth ({benchmark})",
        )
    )
    print(
        "\nThe advantage persists across link speeds and only compresses"
        "\nonce the link is fast enough that migration stops dominating.\n"
    )


if __name__ == "__main__":
    main()
